package janus

import (
	"testing"
	"time"

	"github.com/lattice-tools/janus/internal/benchdata"
)

// TestIntegrationBenchSuite runs the full pipeline — generated instance →
// minimization → bounds → dichotomic search → verified lattice — over a
// set of Table II instances under a small budget, checking the invariants
// that must hold regardless of budget: verification, bound ordering, and
// never losing to the initial upper bound.
func TestIntegrationBenchSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep in short mode")
	}
	names := []string{
		"b12_03", "c17_01", "dc1_00", "dc1_02", "dc1_03",
		"misex1_00", "misex1_04", "mp2d_06", "ex5_14", "clpl_00",
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			inst := benchdata.Lookup(name)
			f, ok := inst.Function()
			if !ok {
				t.Fatalf("generator missed profile for %s", name)
			}
			opt := Options{Budget: 20 * time.Second}
			opt.Encode.Limits = SATLimits{MaxConflicts: 20000, Timeout: 4 * time.Second}
			res, err := Synthesize(f, opt)
			if err != nil {
				t.Fatal(err)
			}
			if res.Assignment == nil || !res.Assignment.Realizes(res.ISOP) {
				t.Fatal("unverified result")
			}
			if res.LB > res.Size || res.Size > res.NUB || res.NUB > res.OUB {
				t.Fatalf("bound ordering violated: lb=%d size=%d nub=%d oub=%d",
					res.LB, res.Size, res.NUB, res.OUB)
			}
			if !res.ISOP.Equiv(f) {
				t.Fatal("ISOP drifted from the instance function")
			}
		})
	}
}

// TestIntegrationPaperProfileStats cross-checks that the suite profile
// statistics used throughout Table II (average #in/#pi/δ) match the
// paper's reported averages (7.2 / 7.3 / 4.0).
func TestIntegrationPaperProfileStats(t *testing.T) {
	var in, pi, deg int
	insts := benchdata.TableII()
	for _, inst := range insts {
		in += inst.Inputs
		pi += inst.PI
		deg += inst.Degree
	}
	n := float64(len(insts))
	if got := float64(in) / n; got < 7.1 || got > 7.3 {
		t.Fatalf("avg #in = %.2f, paper reports 7.2", got)
	}
	if got := float64(pi) / n; got < 7.2 || got > 7.4 {
		t.Fatalf("avg #pi = %.2f, paper reports 7.3", got)
	}
	if got := float64(deg) / n; got < 3.9 || got > 4.1 {
		t.Fatalf("avg δ = %.2f, paper reports 4.0", got)
	}
	// And the paper's average bounds columns.
	var lb, oub, nub int
	for _, inst := range insts {
		lb += inst.PaperLB
		oub += inst.PaperOUB
		nub += inst.PaperNUB
	}
	if got := float64(lb) / n; got < 15.4 || got > 15.6 {
		t.Fatalf("avg paper lb = %.2f, paper reports 15.5", got)
	}
	if got := float64(oub) / n; got < 41.0 || got > 41.2 {
		t.Fatalf("avg paper oub = %.2f, paper reports 41.1", got)
	}
	if got := float64(nub) / n; got < 23.4 || got > 23.6 {
		t.Fatalf("avg paper nub = %.2f, paper reports 23.5", got)
	}
}
