package janus_test

import (
	"fmt"

	"github.com/lattice-tools/janus"
)

// Synthesize the paper's running example and print the lattice shape.
func ExampleSynthesize() {
	f := janus.NewCover(4,
		janus.Product([]int{0, 1, 2, 3}, nil), // abcd
		janus.Product(nil, []int{0, 1, 2, 3})) // a'b'c'd'
	res, err := janus.Synthesize(f, janus.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%dx%d lattice, %d switches\n", res.Grid.M, res.Grid.N, res.Size)
	// Output:
	// 4x2 lattice, 8 switches
}

// Inspect a lattice function: the products of f_2x2 are its two columns.
func ExampleLatticeFunction() {
	f := janus.LatticeFunction(janus.Grid{M: 2, N: 2})
	fmt.Println(len(f.Cubes), "products:", f)
	// Output:
	// 2 products: x0&x2 + x1&x3
}

// Minimize a redundant sum of products before synthesis.
func ExampleMinimize() {
	f := janus.NewCover(2,
		janus.Product([]int{0, 1}, nil),   // ab
		janus.Product([]int{0}, []int{1})) // ab'
	fmt.Println(janus.Minimize(f))
	// Output:
	// x0
}

// Compute the structural lower bound and the best constructive upper
// bounds for the paper's Fig. 4 function.
func ExampleBounds() {
	f := janus.NewCover(5,
		janus.Product([]int{2, 3}, nil),
		janus.Product(nil, []int{2, 3}),
		janus.Product([]int{0, 1, 4}, nil),
		janus.Product(nil, []int{0, 1, 4}))
	bs := janus.Bounds(f, true)
	fmt.Printf("lb=%d best=%s %d switches\n",
		janus.LowerBound(f, 100), bs[0].Name, bs[0].Size())
	// Output:
	// lb=12 best=IPS 15 switches
}

// Decide a single lattice-mapping problem (the paper's LM subproblem).
func ExampleMapOnto() {
	f := janus.NewCover(4,
		janus.Product([]int{0, 1, 2, 3}, nil),
		janus.Product(nil, []int{0, 1, 2, 3}))
	r, err := janus.MapOnto(f, janus.Grid{M: 4, N: 2}, janus.EncodeOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(r.Status)
	// Output:
	// SAT
}
