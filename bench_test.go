package janus

// Benchmark harness: one benchmark per table/figure of the paper, plus
// ablation benches for the design choices DESIGN.md calls out. Lattice
// sizes are reported through b.ReportMetric as "switches" so the shape of
// the paper's tables (who wins, by how much) is visible in -bench output;
// EXPERIMENTS.md records paper-vs-measured values. The full 48-instance
// Table II sweep lives in cmd/tableii (it needs minutes); the benches
// cover a representative spread.

import (
	"fmt"
	"testing"

	"github.com/lattice-tools/janus/internal/benchdata"
	"github.com/lattice-tools/janus/internal/bounds"
	"github.com/lattice-tools/janus/internal/core"
	"github.com/lattice-tools/janus/internal/encode"
	"github.com/lattice-tools/janus/internal/lattice"
	"github.com/lattice-tools/janus/internal/memo"
	"github.com/lattice-tools/janus/internal/minimize"
	"github.com/lattice-tools/janus/internal/sat"
)

// --- Table I ------------------------------------------------------------

// BenchmarkTableI enumerates the lattice function and dual product counts
// (Table I). The 7x7/8x8 corner costs seconds, so the bench sweeps to 6
// and the pinned full-table values live in the lattice package tests.
func BenchmarkTableI(b *testing.B) {
	for _, mn := range []lattice.Grid{{M: 2, N: 2}, {M: 4, N: 4}, {M: 6, N: 6}, {M: 6, N: 8}} {
		b.Run(mn.String(), func(b *testing.B) {
			var primal, dual int64
			for i := 0; i < b.N; i++ {
				primal = mn.CountPaths()
				dual = mn.CountDualPaths()
			}
			b.ReportMetric(float64(primal), "products")
			b.ReportMetric(float64(dual), "dual-products")
		})
	}
}

// --- Table II -----------------------------------------------------------

var tableIIBenchSet = []string{
	"b12_03", "c17_01", "dc1_00", "dc1_02", "dc1_03",
	"misex1_00", "misex1_04", "mp2d_06", "ex5_14", "b12_00",
}

func benchLimits() sat.Limits { return sat.Limits{MaxConflicts: 50000} }

// BenchmarkTableIIJanus runs JANUS on a representative Table II subset.
func BenchmarkTableIIJanus(b *testing.B) {
	for _, name := range tableIIBenchSet {
		inst := benchdata.Lookup(name)
		f, _ := inst.Function()
		b.Run(name, func(b *testing.B) {
			var size int
			opt := core.Options{}
			opt.Encode.Limits = benchLimits()
			for i := 0; i < b.N; i++ {
				r, err := core.Synthesize(f, opt)
				if err != nil {
					b.Fatal(err)
				}
				size = r.Size
			}
			b.ReportMetric(float64(size), "switches")
			b.ReportMetric(float64(parseSize(inst.Paper["janus"])), "paper-switches")
		})
	}
}

// BenchmarkTableIIMethods compares JANUS with the exact [6], approximate
// [6] and heuristic [11] baselines on a few instances (the Table II
// algorithm columns).
func BenchmarkTableIIMethods(b *testing.B) {
	insts := []string{"dc1_00", "misex1_00", "mp2d_06"}
	type runner struct {
		name string
		run  func(f Cover) (int, error)
	}
	runners := []runner{
		{"janus", func(f Cover) (int, error) {
			opt := core.Options{}
			opt.Encode.Limits = benchLimits()
			r, err := core.Synthesize(f, opt)
			return r.Size, err
		}},
		{"exact6", func(f Cover) (int, error) {
			r, err := ExactBaseline(f, BaselineOptions{Limits: benchLimits()})
			return r.Size, err
		}},
		{"approx6", func(f Cover) (int, error) {
			r, err := ApproxBaseline(f, BaselineOptions{Limits: benchLimits()})
			return r.Size, err
		}},
		{"heur11", func(f Cover) (int, error) {
			r, err := HeuristicBaseline(f, BaselineOptions{Limits: benchLimits()})
			return r.Size, err
		}},
	}
	for _, name := range insts {
		f, _ := benchdata.Lookup(name).Function()
		for _, rn := range runners {
			b.Run(name+"/"+rn.name, func(b *testing.B) {
				var size int
				for i := 0; i < b.N; i++ {
					s, err := rn.run(f)
					if err != nil {
						b.Fatal(err)
					}
					size = s
				}
				b.ReportMetric(float64(size), "switches")
			})
		}
	}
}

// BenchmarkTableIIBounds measures the search-space reduction of the new
// upper bounds (the lb/oub/nub columns): nub/oub shrinkage is the paper's
// 42.8% headline.
func BenchmarkTableIIBounds(b *testing.B) {
	var sumO, sumN float64
	for _, name := range tableIIBenchSet {
		f, _ := benchdata.Lookup(name).Function()
		isop, dual := minimize.AutoDual(f)
		b.Run(name, func(b *testing.B) {
			var oub, nub int
			for i := 0; i < b.N; i++ {
				plain := bounds.All(isop, dual, false)
				improved := bounds.All(isop, dual, true)
				oub, nub = plain[0].Size(), improved[0].Size()
			}
			b.ReportMetric(float64(oub), "oub")
			b.ReportMetric(float64(nub), "nub")
			sumO += float64(oub)
			sumN += float64(nub)
		})
	}
	if sumO > 0 {
		b.ReportMetric(100*(1-sumN/sumO), "avg-reduction-%")
	}
}

// --- Table III ----------------------------------------------------------

// BenchmarkTableIII compares the straight-forward packing with JANUS-MF
// on the squar5 block (the exactly-reconstructed Table III instance).
func BenchmarkTableIII(b *testing.B) {
	mi := benchdata.LookupMulti("squar5")
	outs := mi.Outputs()
	opt := core.Options{}
	opt.Encode.Limits = benchLimits()
	b.Run("squar5/straight-forward", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			mr, err := core.SynthesizeMulti(outs, opt, false)
			if err != nil {
				b.Fatal(err)
			}
			size = mr.Lattice.Size()
		}
		b.ReportMetric(float64(size), "switches")
		b.ReportMetric(float64(mi.PaperSFSize), "paper-switches")
	})
	b.Run("squar5/janus-mf", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			mr, err := core.SynthesizeMulti(outs, opt, true)
			if err != nil {
				b.Fatal(err)
			}
			size = mr.Lattice.Size()
		}
		b.ReportMetric(float64(size), "switches")
		b.ReportMetric(float64(mi.PaperMFSize), "paper-switches")
	})
}

// --- Figures ------------------------------------------------------------

// BenchmarkFig1 synthesizes the running example f = abcd + a'b'c'd'
// (Fig. 1(d): minimum 4×2).
func BenchmarkFig1(b *testing.B) {
	f := NewCover(4,
		Product([]int{0, 1, 2, 3}, nil),
		Product(nil, []int{0, 1, 2, 3}))
	var size int
	for i := 0; i < b.N; i++ {
		r, err := Synthesize(f, Options{})
		if err != nil {
			b.Fatal(err)
		}
		size = r.Size
	}
	b.ReportMetric(float64(size), "switches")
}

// BenchmarkFig4Bounds runs every bound construction on the Fig. 4
// function (DP 6x4, PS 3x7, DPS 11x4, IPS 3x5, IDPS 8x4).
func BenchmarkFig4Bounds(b *testing.B) {
	f := NewCover(5,
		Product([]int{2, 3}, nil),
		Product(nil, []int{2, 3}),
		Product([]int{0, 1, 4}, nil),
		Product(nil, []int{0, 1, 4}))
	isop, dual := minimize.AutoDual(f)
	for i := 0; i < b.N; i++ {
		bs := bounds.All(isop, dual, true)
		if i == b.N-1 {
			for _, bd := range bs {
				b.ReportMetric(float64(bd.Size()), bd.Name+"-switches")
			}
		}
	}
}

// BenchmarkFig2POS measures the gate-level CNF construction of Fig. 2 via
// a full LM encode+solve on the 3×3 lattice for a shared-literal target.
func BenchmarkFig2POS(b *testing.B) {
	f := NewCover(4,
		Product([]int{1, 2, 3}, []int{0}),
		Product([]int{0, 2, 3}, []int{1}))
	isop, dual := minimize.AutoDual(f)
	for i := 0; i < b.N; i++ {
		r, err := encode.SolveLM(isop, dual, lattice.Grid{M: 3, N: 3}, encode.Options{})
		if err != nil || r.Status != sat.Sat {
			b.Fatalf("unexpected: %v %v", r.Status, err)
		}
	}
}

// --- Ablations ----------------------------------------------------------

// BenchmarkAblationEncoding compares the LM formulation variants on a
// fixed feasible instance: primal vs dual choice, connectivity facts
// on/off, degree constraints on/off.
func BenchmarkAblationEncoding(b *testing.B) {
	f, _ := benchdata.Lookup("dc1_02").Function()
	isop, dual := minimize.AutoDual(f)
	g := lattice.Grid{M: 4, N: 3}
	variants := []struct {
		name string
		opt  encode.Options
	}{
		{"auto", encode.Options{}},
		{"primal", encode.Options{Mode: encode.PrimalOnly}},
		{"dual", encode.Options{Mode: encode.DualOnly}},
		{"no-facts", encode.Options{DisableFacts: true}},
		{"no-degree", encode.Options{DisableDegree: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var conflicts int64
			for i := 0; i < b.N; i++ {
				r, err := encode.SolveLM(isop, dual, g, v.opt)
				if err != nil {
					b.Fatal(err)
				}
				conflicts = r.SolverStat.Conflicts
				_ = r
			}
			b.ReportMetric(float64(conflicts), "conflicts")
		})
	}
}

// BenchmarkAblationEngine compares the monolithic LM encoding with the
// CEGAR engine on a feasible and an infeasible lattice: CEGAR
// materializes only the truth-table entries it needs (wins on SAT
// instances with many inputs) but must refine to completion for UNSAT
// proofs where the monolithic encoding shines.
func BenchmarkAblationEngine(b *testing.B) {
	f, _ := benchdata.Lookup("dc1_02").Function()
	isop, dual := minimize.AutoDual(f)
	cases := []struct {
		name string
		g    lattice.Grid
	}{
		{"sat-4x3", lattice.Grid{M: 4, N: 3}},
		{"unsat-3x3", lattice.Grid{M: 3, N: 3}},
	}
	for _, c := range cases {
		for _, cegar := range []bool{false, true} {
			name := c.name + "/monolithic"
			if cegar {
				name = c.name + "/cegar"
			}
			b.Run(name, func(b *testing.B) {
				var vars int
				for i := 0; i < b.N; i++ {
					r, err := encode.SolveLM(isop, dual, c.g, encode.Options{CEGAR: cegar})
					if err != nil {
						b.Fatal(err)
					}
					vars = r.Vars
				}
				b.ReportMetric(float64(vars), "vars")
			})
		}
	}
}

// BenchmarkCegarEngine measures the incremental CEGAR engine on
// multi-counterexample instances and reports its headline counters: the
// refinement count, the clause volume actually handed to the persistent
// solver, and the volume a rebuild-per-iteration loop would have pushed.
// The added-vs-rebuilt gap (and the wall time, vs the seed engine) is the
// win of keeping one solver alive across refinements.
func BenchmarkCegarEngine(b *testing.B) {
	cases := []struct {
		inst string
		g    lattice.Grid
	}{
		{"dc1_02", lattice.Grid{M: 4, N: 3}},
		{"b12_03", lattice.Grid{M: 4, N: 4}},
		{"mp2d_06", lattice.Grid{M: 5, N: 4}},
	}
	for _, c := range cases {
		f, _ := benchdata.Lookup(c.inst).Function()
		isop, dual := minimize.AutoDual(f)
		b.Run(fmt.Sprintf("%s-%s", c.inst, c.g), func(b *testing.B) {
			var r encode.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = encode.SolveLMCegar(isop, dual, c.g, encode.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			if r.Status != sat.Sat {
				b.Fatalf("status = %v", r.Status)
			}
			b.ReportMetric(float64(r.CegarIters), "iters")
			b.ReportMetric(float64(r.AddedClauses), "clauses-added")
			b.ReportMetric(float64(r.RebuiltClauses), "clauses-rebuilt")
			// Solver effort of the last solve (lifetime of its persistent
			// solver), so BENCH_janus.json tracks search-pressure drift.
			b.ReportMetric(float64(r.SolverStat.Conflicts), "conflicts")
			b.ReportMetric(float64(r.SolverStat.Propagations), "propagations")
		})
	}
}

// BenchmarkSharedSearch compares the whole dichotomic search across the
// three engine strategies: fresh per-candidate CEGAR solvers, the shared
// assumption-based solver, and the auto policy that picks per step.
// "stamped-clauses" is the clause volume actually built when a shared
// pool runs; compare it against the fresh run's "clauses-added" to see
// how much construction the activation-literal reuse avoids, and the
// ns/op columns for the wall-clock effect. The auto rows additionally
// report the policy trail (shared/fresh step counts, predicted depth)
// and the clause-quality filter's work — the inputs to the
// engine_policy block of BENCH_janus.json and its perfgate rule.
//
// Every iteration starts from cleared memo caches: the process-wide
// path/table/cover caches would otherwise let iteration order decide
// how much enumeration work each mode pays, and the instances are
// chosen so the dichotomic search actually runs (dc1_02 and b12_03,
// measured here before, have lb == nub — their searches decide zero LM
// problems and every solver metric reads zero regardless of engine).
func BenchmarkSharedSearch(b *testing.B) {
	insts := []string{"dc1_00", "dc1_03", "mp2d_06", "misex1_04"}
	modes := []struct {
		name string
		sel  core.EngineSelect
	}{
		{"fresh", core.EngineFresh},
		{"shared", core.EngineShared},
		{"auto", core.EngineAuto},
	}
	for _, name := range insts {
		f, _ := benchdata.Lookup(name).Function()
		for _, mode := range modes {
			b.Run(name+"/"+mode.name, func(b *testing.B) {
				var r core.Result
				opt := core.Options{EngineSelect: mode.sel}
				opt.Encode.CEGAR = true
				opt.Encode.Limits = benchLimits()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					memo.Reset()
					b.StartTimer()
					var err error
					r, err = core.Synthesize(f, opt)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(r.Size), "switches")
				b.ReportMetric(float64(r.ClausesAdded), "clauses-added")
				if r.FreshSteps+r.SharedSteps == 0 {
					b.Fatalf("%s: no dichotomic step ran; pick an instance with lb < nub", name)
				}
				if mode.sel != core.EngineFresh {
					b.ReportMetric(float64(r.StampedClauses), "stamped-clauses")
					b.ReportMetric(float64(r.SharedReused), "solver-reuses")
					b.ReportMetric(float64(r.TransferredCEX), "cex-transferred")
					b.ReportMetric(float64(r.CEXFiltered), "cex-filtered")
					b.ReportMetric(float64(r.LearntsPruned), "learnts-pruned")
				}
				if mode.sel == core.EngineAuto {
					b.ReportMetric(float64(r.SharedSteps), "shared-steps")
					b.ReportMetric(float64(r.FreshSteps), "fresh-steps")
					b.ReportMetric(float64(r.PredictedDepth), "predicted-depth")
				}
			})
		}
	}
}

// BenchmarkAblationBounds compares the dichotomic search with and without
// the improved initial bounds (the paper's oub-vs-nub ablation).
func BenchmarkAblationBounds(b *testing.B) {
	f, _ := benchdata.Lookup("dc1_03").Function()
	for _, improved := range []bool{false, true} {
		name := "oub-only"
		if improved {
			name = "with-nub"
		}
		b.Run(name, func(b *testing.B) {
			var lm int
			opt := core.Options{DisableImprovedBounds: !improved, DisableDS: !improved}
			opt.Encode.Limits = benchLimits()
			for i := 0; i < b.N; i++ {
				r, err := core.Synthesize(f, opt)
				if err != nil {
					b.Fatal(err)
				}
				lm = r.LMSolved
			}
			b.ReportMetric(float64(lm), "LM-problems")
		})
	}
}

// --- Substrates ---------------------------------------------------------

// BenchmarkSATSolver exercises the CDCL core on pigeonhole instances.
func BenchmarkSATSolver(b *testing.B) {
	for _, holes := range []int{6, 7, 8} {
		b.Run(fmt.Sprintf("php-%d", holes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := sat.New((holes + 1) * holes)
				v := func(p, h int) int { return p*holes + h }
				for p := 0; p <= holes; p++ {
					lits := make([]sat.Lit, holes)
					for h := 0; h < holes; h++ {
						lits[h] = sat.MkLit(v(p, h), false)
					}
					s.AddClause(lits...)
				}
				for h := 0; h < holes; h++ {
					for p1 := 0; p1 <= holes; p1++ {
						for p2 := p1 + 1; p2 <= holes; p2++ {
							s.AddClause(sat.MkLit(v(p1, h), true), sat.MkLit(v(p2, h), true))
						}
					}
				}
				if st := s.Solve(sat.Limits{}); st != sat.Unsat {
					b.Fatalf("PHP must be UNSAT, got %v", st)
				}
			}
		})
	}
}

// BenchmarkMinimizer measures the espresso-style loop on the benchmark
// generator's functions.
func BenchmarkMinimizer(b *testing.B) {
	f, _ := benchdata.Lookup("ex5_17").Function()
	for i := 0; i < b.N; i++ {
		g := minimize.ISOP(f)
		if g.IsZero() {
			b.Fatal("bad minimization")
		}
	}
}

// BenchmarkPathEnumeration measures the chordless-path DFS that underlies
// every lattice function computation.
func BenchmarkPathEnumeration(b *testing.B) {
	g := lattice.Grid{M: 5, N: 5}
	for i := 0; i < b.N; i++ {
		if got := g.CountPaths(); got != 205 {
			b.Fatalf("count = %d", got)
		}
	}
}

func parseSize(sol string) int {
	var m, n int
	if _, err := fmt.Sscanf(sol, "%dx%d", &m, &n); err != nil {
		return 0
	}
	return m * n
}
