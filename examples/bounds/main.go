// Bounds walkthrough: reproduces the paper's Fig. 4 — the upper-bound
// constructions DP, PS, DPS, IPS, IDPS for f = cd + c'd' + abe + a'b'e',
// the structural lower bound, and the minimum lattice JANUS finds.
package main

import (
	"fmt"
	"log"

	"github.com/lattice-tools/janus"
)

func main() {
	// a=0 b=1 c=2 d=3 e=4
	f := janus.NewCover(5,
		janus.Product([]int{2, 3}, nil),
		janus.Product(nil, []int{2, 3}),
		janus.Product([]int{0, 1, 4}, nil),
		janus.Product(nil, []int{0, 1, 4}))
	names := []string{"a", "b", "c", "d", "e"}

	fmt.Printf("f = %s\n\n", f.Format(names))
	fmt.Println("verified upper bounds (paper Fig. 4: DP 6x4, PS 3x7, DPS 11x4, IPS 3x5, IDPS 8x4):")
	for _, b := range janus.Bounds(f, true) {
		g := b.Grid()
		fmt.Printf("  %-5s %dx%-3d = %2d switches\n", b.Name, g.M, g.N, b.Size())
	}
	fmt.Printf("\nstructural lower bound: %d (paper: 12)\n", janus.LowerBound(f, 100))

	res, err := janus.Synthesize(f, janus.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("JANUS minimum: %dx%d = %d switches (paper: 3x4 = 12)\n\n",
		res.Grid.M, res.Grid.N, res.Size)
	fmt.Println(res.Assignment.Format(names))
}
