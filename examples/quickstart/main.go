// Quickstart: synthesize the paper's running example f = abcd + a'b'c'd'
// (Fig. 1) onto a minimum-size switching lattice and print the switch
// grid.
package main

import (
	"fmt"
	"log"

	"github.com/lattice-tools/janus"
)

func main() {
	// f = abcd + a'b'c'd' over inputs a..d (variables 0..3).
	f := janus.NewCover(4,
		janus.Product([]int{0, 1, 2, 3}, nil),
		janus.Product(nil, []int{0, 1, 2, 3}))

	res, err := janus.Synthesize(f, janus.Options{})
	if err != nil {
		log.Fatal(err)
	}

	names := []string{"a", "b", "c", "d"}
	fmt.Printf("target  : %s\n", res.ISOP.Format(names))
	fmt.Printf("lattice : %dx%d (%d switches)  bounds lb=%d nub=%d (%s)\n",
		res.Grid.M, res.Grid.N, res.Size, res.LB, res.NUB, res.UBMethod)
	fmt.Println(res.Assignment.Format(names))

	// The result is verified internally, but the check is one call away:
	if !res.Assignment.Realizes(res.ISOP) {
		log.Fatal("implementation does not match the target")
	}
	fmt.Println("verified: top-bottom connectivity equals f on all 16 inputs")
}
