// Engine comparison: solve the same lattice mapping problem with the
// monolithic truth-table encoding and with the CEGAR engine, showing the
// lazy engine constrains far fewer entries (visible as variables) while
// agreeing on the answer.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/lattice-tools/janus"
)

func main() {
	// A 6-input function: the monolithic encoding constrains all 64
	// truth-table entries; CEGAR discovers how few actually matter.
	f := janus.NewCover(6,
		janus.Product([]int{0, 1, 2}, nil),
		janus.Product(nil, []int{3, 4}),
		janus.Product([]int{5, 0}, []int{2}))

	for _, cegar := range []bool{false, true} {
		name := "monolithic"
		if cegar {
			name = "CEGAR"
		}
		opt := janus.Options{}
		opt.Encode.CEGAR = cegar
		start := time.Now()
		res, err := janus.Synthesize(f, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s: %dx%d (%d switches) in %v, %d LM problems\n",
			name, res.Grid.M, res.Grid.N, res.Size,
			time.Since(start).Round(time.Millisecond), res.LMSolved)
		if !res.Assignment.Realizes(res.ISOP) {
			log.Fatalf("%s produced an unverified result", name)
		}
	}
	fmt.Println("both engines verified against the full truth table")
}
