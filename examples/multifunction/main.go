// Multi-function synthesis: realize all eight outputs of a 5-bit squarer
// (the squar5 block of the paper's Table III) on a single lattice,
// comparing the straight-forward packing with JANUS-MF.
package main

import (
	"fmt"
	"log"

	"github.com/lattice-tools/janus"
)

// squarerOutputs builds output k = bit k+2 of x*x for the 5-bit input x.
func squarerOutputs() []janus.Cover {
	outs := make([]janus.Cover, 8)
	for k := 0; k < 8; k++ {
		f := janus.NewCover(5)
		for x := uint64(0); x < 32; x++ {
			if (x*x)>>uint(k+2)&1 == 1 {
				var pos, neg []int
				for v := 0; v < 5; v++ {
					if x&(1<<uint(v)) != 0 {
						pos = append(pos, v)
					} else {
						neg = append(neg, v)
					}
				}
				f.Cubes = append(f.Cubes, janus.Product(pos, neg))
			}
		}
		outs[k] = janus.Minimize(f)
	}
	return outs
}

func main() {
	outs := squarerOutputs()
	opt := janus.Options{}
	opt.Encode.Limits = janus.SATLimits{MaxConflicts: 50000}

	sf, err := janus.SynthesizeMulti(outs, opt, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("straight-forward: %s = %d switches\n", sf.Sol(), sf.Lattice.Size())

	mf, err := janus.SynthesizeMulti(outs, opt, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("JANUS-MF        : %s = %d switches\n", mf.Sol(), mf.Lattice.Size())
	if sfSize, mfSize := sf.Lattice.Size(), mf.Lattice.Size(); mfSize < sfSize {
		fmt.Printf("gain            : %.0f%%\n", 100*float64(sfSize-mfSize)/float64(sfSize))
	}

	if err := mf.Lattice.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: every region implements its squarer bit")
}
