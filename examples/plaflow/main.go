// PLA tool flow: parse an espresso-format PLA, minimize each output,
// synthesize it on a lattice, and compare JANUS against the baseline
// algorithms of the paper's Table II — the end-to-end flow the janus
// command wraps.
package main

import (
	"fmt"
	"log"

	"github.com/lattice-tools/janus"
)

const plaText = `
# two outputs of a tiny decoder
.i 4
.o 2
.ilb a b c d
.ob f g
.p 4
11-- 10
--00 10
1-1- 01
0-0- 01
.e
`

func main() {
	p, err := janus.ParsePLAString(plaText)
	if err != nil {
		log.Fatal(err)
	}
	for o, cov := range p.Covers {
		isop := janus.Minimize(cov)
		fmt.Printf("%s = %s\n", p.OutputNames[o], isop.Format(p.InputNames))

		res, err := janus.Synthesize(cov, janus.Options{})
		if err != nil {
			log.Fatal(err)
		}
		ex, err := janus.ExactBaseline(cov, janus.BaselineOptions{})
		if err != nil {
			log.Fatal(err)
		}
		ap, err := janus.ApproxBaseline(cov, janus.BaselineOptions{})
		if err != nil {
			log.Fatal(err)
		}
		he, err := janus.HeuristicBaseline(cov, janus.BaselineOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  JANUS %dx%d | exact[6] %dx%d | approx[6] %dx%d | heur[11] %dx%d\n",
			res.Grid.M, res.Grid.N, ex.Grid.M, ex.Grid.N,
			ap.Grid.M, ap.Grid.N, he.Grid.M, he.Grid.N)
		fmt.Println(res.Assignment.Format(p.InputNames))
		fmt.Println()
	}
}
